// lotus_fleet: drive a sweep fleet — N worker processes draining a
// crash-safe work queue into one shared trial store, plus the query daemon
// that serves the store over a Unix socket.
//
// subcommands:
//
//   run     build a claim file of work units (one per selected figure
//           bench), fork --workers processes, and drain the queue. Every
//           worker runs benches through its own exp::TrialCache backed by
//           the SAME sharded store directory; per-shard flocks plus
//           append-time dedup make the fleet's store hold exactly the
//           record set a single-process `lotus_figs` run produces, however
//           units land on workers (verified in CI with `lotus_store
//           compact --canon` + cmp). Workers killed mid-unit are respawned
//           and the queue's lease machinery re-issues their units. With
//           --socket, workers consult a running query daemon before
//           computing (exp::TrialCache::attach_remote).
//   serve   run the query daemon on --socket over --cache-dir until
//           SIGTERM/SIGINT; dumps aggregate + per-connection metrics and
//           p50/p99 service time to stderr on shutdown.
//   query   client for a running daemon: --ping, --stats, or a single
//           trial lookup (--key/--x-bits/--trial-seed).
//   status  print the queue's slot tallies (pending/claimed/done, reclaim
//           and torn counts).
//
// Bench-shaping flags (--quick, --points, --seeds, --seed, --threads,
// --engine-threads, --nodes, --rounds, --no-cache) are forwarded to every
// bench a worker runs, exactly as lotus_figs forwards them — a fleet run
// and a lotus_figs run given the same flags demand the same trials.
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string_view>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "exp/trial_cache.h"
#include "exp/trial_store.h"
#include "fleet/client.h"
#include "fleet/daemon.h"
#include "fleet/queue.h"
#include "fleet/worker.h"

namespace {

using lotus::figs::BenchDef;
using lotus::fleet::WorkQueue;
using lotus::fleet::WorkUnit;

constexpr std::string_view kUsage =
    "usage: lotus_fleet <run|serve|query|status> [options]\n"
    "\n"
    "Sweep fleet: a crash-safe work queue, N worker processes, and a trial\n"
    "store query daemon. `lotus_fleet <sub> --help` lists each\n"
    "subcommand's options.\n";

int usage_error(const std::string& message) {
  std::cerr << "lotus_fleet: " << message << "\n\n" << kUsage;
  return 2;
}

/// --only value -> bench definitions, registry order (lotus_figs' rules).
std::vector<const BenchDef*> select_benches(const std::string& only) {
  std::vector<const BenchDef*> selected;
  if (only.empty()) {
    for (const auto& bench : lotus::figs::all_benches()) {
      selected.push_back(&bench);
    }
    return selected;
  }
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= only.size()) {
    const auto comma = only.find(',', start);
    const auto end = comma == std::string::npos ? only.size() : comma;
    if (end > start) names.emplace_back(only.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (names.empty()) {
    std::cerr << "lotus_fleet: --only selected no benches\n";
    std::exit(2);
  }
  for (const auto& name : names) {
    if (lotus::figs::find_bench(name) == nullptr) {
      std::cerr << "lotus_fleet: unknown bench '" << name << "'\n";
      std::exit(2);
    }
  }
  for (const auto& bench : lotus::figs::all_benches()) {
    for (const auto& name : names) {
      if (name == bench.name) {
        selected.push_back(&bench);
        break;
      }
    }
  }
  return selected;
}

/// The argv a bench would see standalone — identical to lotus_figs'
/// forwarding, which is what makes fleet and single-process runs demand
/// the same trial grid.
std::vector<std::string> forwarded_args(const lotus::exp::Cli& cli) {
  std::vector<std::string> args;
  if (cli.quick()) args.emplace_back("--quick");
  if (cli.points_explicit()) {
    args.emplace_back("--points");
    args.emplace_back(std::to_string(cli.points()));
  }
  if (cli.seeds_explicit()) {
    args.emplace_back("--seeds");
    args.emplace_back(std::to_string(cli.seeds()));
  }
  if (cli.seed_explicit()) {
    args.emplace_back("--seed");
    args.emplace_back(std::to_string(cli.seed()));
  }
  if (cli.threads() != 0) {
    args.emplace_back("--threads");
    args.emplace_back(std::to_string(cli.threads()));
  }
  if (cli.engine_threads() != 0) {
    args.emplace_back("--engine-threads");
    args.emplace_back(std::to_string(cli.engine_threads()));
  }
  if (cli.nodes() != 0) {
    args.emplace_back("--nodes");
    args.emplace_back(std::to_string(cli.nodes()));
  }
  if (cli.rounds() != 0) {
    args.emplace_back("--rounds");
    args.emplace_back(std::to_string(cli.rounds()));
  }
  if (!cli.cache_enabled()) args.emplace_back("--no-cache");
  return args;
}

// --- run ------------------------------------------------------------------

struct RunFlags {
  std::uint64_t workers = 4;
  std::uint64_t lease_ms = 30'000;
  std::uint64_t respawns = 0;  ///< 0 -> 2 * workers
  std::string queue_path;
  std::string socket_path;
  std::string only;
};

/// The whole life of one worker process: runs in the forked child, never
/// returns to the parent's code path.
int worker_process(const lotus::exp::Cli& cli, const RunFlags& flags) {
  // Bench tables go to stdout; in a fleet N workers would interleave them
  // into garbage, and the authoritative output is a warm lotus_figs run
  // over the fleet's store — so worker stdout is discarded.
  if (std::freopen("/dev/null", "w", stdout) == nullptr) return 1;

  lotus::exp::TrialCache cache;
  std::unique_ptr<lotus::exp::TrialStore> store;
  if (cli.store_enabled()) {
    store = std::make_unique<lotus::exp::TrialStore>(cli.cache_dir(),
                                                     cli.store_shards());
    if (store->enabled()) cache.attach_store(*store);
  }
  std::unique_ptr<lotus::fleet::StoreClient> remote;
  if (!flags.socket_path.empty()) {
    remote = lotus::fleet::StoreClient::connect(flags.socket_path);
    if (remote) {
      cache.attach_remote(*remote);
    } else {
      std::cerr << "[lotus_fleet worker " << ::getpid()
                << "] no daemon at " << flags.socket_path
                << "; running cold\n";
    }
  }

  const auto shared = forwarded_args(cli);
  lotus::exp::CsvSink sink;  // disabled: fleet workers emit no CSV
  const auto runner = [&](const WorkUnit& unit) {
    const BenchDef* bench = lotus::figs::find_bench(unit.bench);
    if (bench == nullptr) return false;
    std::vector<const char*> bench_argv = {bench->name};
    for (const auto& arg : shared) bench_argv.push_back(arg.c_str());
    lotus::exp::Cli bench_cli{bench->spec()};
    if (bench_cli.parse(static_cast<int>(bench_argv.size()),
                        bench_argv.data()) != lotus::exp::ParseStatus::kOk) {
      return false;
    }
    if (bench->run(bench_cli, sink, cache) != 0) return false;
    // Commit this unit's records BEFORE the unit can be marked done: a
    // worker killed after complete() must leave a store that already holds
    // everything the completed unit produced.
    if (store) {
      store->flush();
      if (!store->enabled()) return false;  // flush failed: don't complete
    }
    return true;
  };

  lotus::fleet::Worker worker{
      {.queue_path = flags.queue_path,
       .owner = static_cast<std::uint64_t>(::getpid()),
       .lease_ms = flags.lease_ms},
      runner};
  const auto summary = worker.run();
  std::cerr << "[lotus_fleet worker " << ::getpid() << "] "
            << summary.completed << " completed, " << summary.superseded
            << " superseded, " << summary.failed << " failed";
  if (remote) {
    std::cerr << "; daemon: " << remote->hits() << " hits, "
              << remote->misses() << " misses"
              << (remote->poisoned() ? " (connection lost)" : "");
  }
  std::cerr << "\n";
  return summary.io_error || summary.failed > 0 ? 1 : 0;
}

int run_fleet(lotus::exp::Cli& cli, const RunFlags& flags) {
  if (flags.workers == 0) return usage_error("--workers must be >= 1");
  std::error_code ec;
  std::filesystem::create_directories(cli.cache_dir(), ec);  // queue lives here
  const std::string queue_path =
      flags.queue_path.empty() ? cli.cache_dir() + "/fleet.queue"
                               : flags.queue_path;
  RunFlags resolved = flags;
  resolved.queue_path = queue_path;

  const auto selected = select_benches(flags.only);
  std::vector<WorkUnit> units;
  units.reserve(selected.size());
  for (const BenchDef* bench : selected) {
    units.push_back({bench->name, WorkUnit::kWholeSweep, WorkUnit::kBenchSeed});
  }
  if (!WorkQueue::create(queue_path, units, flags.lease_ms)) {
    std::cerr << "lotus_fleet: cannot create queue at " << queue_path << "\n";
    return 1;
  }

  const std::uint64_t max_respawns =
      flags.respawns != 0 ? flags.respawns : 2 * flags.workers;
  std::uint64_t respawns_left = max_respawns;

  const auto spawn = [&]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) ::_exit(worker_process(cli, resolved));
    return pid;
  };

  std::size_t alive = 0;
  for (std::uint64_t i = 0; i < flags.workers; ++i) {
    if (spawn() > 0) ++alive;
  }
  if (alive == 0) {
    std::cerr << "lotus_fleet: could not fork any worker\n";
    return 1;
  }

  int exit_code = 0;
  while (alive > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    --alive;
    if (WIFSIGNALED(status)) {
      // A worker died mid-unit (OOM kill, crash, operator SIGKILL). Its
      // lease expires and the unit is re-issued; respawn a replacement so
      // the fleet keeps its width, up to a bound that stops a crash loop.
      std::cerr << "[lotus_fleet] worker " << pid << " died on signal "
                << WTERMSIG(status) << "\n";
      if (respawns_left > 0) {
        --respawns_left;
        if (spawn() > 0) ++alive;
      } else {
        exit_code = 1;
      }
    } else if (WEXITSTATUS(status) != 0 && exit_code == 0) {
      exit_code = WEXITSTATUS(status);
    }
  }

  WorkQueue queue{queue_path};
  const auto stats = queue.stats();
  if (!stats) {
    std::cerr << "lotus_fleet: cannot read queue stats\n";
    return 1;
  }
  std::cerr << "[lotus_fleet] " << stats->done << "/" << stats->units
            << " units done, " << stats->reclaims << " reclaims ("
            << max_respawns - respawns_left << " respawns)\n";
  if (stats->done != stats->units) {
    std::cerr << "[lotus_fleet] queue not drained (" << stats->pending
              << " pending, " << stats->claimed << " claimed)\n";
    return 1;
  }
  return exit_code;
}

// --- serve / query / status -----------------------------------------------

int run_serve(const lotus::exp::Cli& cli, const std::string& socket_path) {
  if (socket_path.empty()) return usage_error("serve needs --socket PATH");
  lotus::fleet::QueryDaemon daemon{{.socket_path = socket_path,
                                    .cache_dir = cli.cache_dir(),
                                    .store_shards = cli.store_shards()}};
  lotus::fleet::QueryDaemon::install_signal_handlers();
  if (!daemon.bind()) {
    std::cerr << "lotus_fleet: " << daemon.last_error() << "\n";
    return 1;
  }
  std::cerr << "[lotus_fleet] serving " << cli.cache_dir() << " on "
            << socket_path << "\n";
  return daemon.run();
}

struct QueryFlags {
  std::string socket_path;
  bool ping = false;
  bool stats = false;
  std::uint64_t key = 0;
  std::uint64_t x_bits = 0;
  std::uint64_t trial_seed = 0;
  bool lookup = false;  ///< any of --key/--x-bits/--trial-seed given
};

int run_query(const QueryFlags& flags) {
  if (flags.socket_path.empty()) {
    return usage_error("query needs --socket PATH");
  }
  const auto client = lotus::fleet::StoreClient::connect(flags.socket_path);
  if (!client) {
    std::cerr << "lotus_fleet: cannot connect to " << flags.socket_path
              << "\n";
    return 1;
  }
  if (flags.ping) {
    const std::uint8_t payload[] = {'l', 'o', 't', 'u', 's'};
    if (!client->ping(payload)) {
      std::cerr << "lotus_fleet: ping failed: " << client->last_error()
                << "\n";
      return 1;
    }
    std::cout << "pong\n";
    return 0;
  }
  if (flags.stats) {
    lotus::fleet::WireStats stats;
    if (!client->stats(stats)) {
      std::cerr << "lotus_fleet: stats failed: " << client->last_error()
                << "\n";
      return 1;
    }
    std::cout << "connections " << stats.connections << "\n"
              << "frames " << stats.frames << "\n"
              << "lookups " << stats.lookups << "\n"
              << "hits " << stats.hits << "\n"
              << "misses " << stats.misses << "\n"
              << "errors " << stats.errors << "\n"
              << "bytes_in " << stats.bytes_in << "\n"
              << "bytes_out " << stats.bytes_out << "\n";
    return 0;
  }
  if (flags.lookup) {
    double value = 0.0;
    if (client->lookup(flags.key, flags.x_bits, flags.trial_seed, value)) {
      std::printf("hit %.17g\n", value);
      return 0;
    }
    if (client->poisoned()) {
      std::cerr << "lotus_fleet: lookup failed: " << client->last_error()
                << "\n";
      return 1;
    }
    std::cout << "miss\n";
    return 0;
  }
  return usage_error("query needs --ping, --stats, or a --key lookup");
}

int run_status(const std::string& queue_path) {
  if (queue_path.empty()) return usage_error("status needs --queue PATH");
  WorkQueue queue{queue_path};
  const auto stats = queue.stats();
  if (!stats) {
    std::cerr << "lotus_fleet: no valid queue at " << queue_path << "\n";
    return 1;
  }
  std::cout << queue_path << ": " << stats->units << " units ("
            << stats->pending << " pending, " << stats->claimed
            << " claimed, " << stats->done << " done), " << stats->reclaims
            << " reclaims, " << stats->torn << " torn\n";
  return stats->done == stats->units ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing subcommand");
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (command != "run" && command != "serve" && command != "query" &&
      command != "status") {
    return usage_error("unknown subcommand '" + command + "'");
  }

  lotus::exp::Cli cli{{.program = "lotus_fleet " + command,
                       .summary =
                           "Sweep fleet: crash-safe work queue, forked "
                           "workers, and the trial store query daemon.",
                       .seed = 2008}};
  RunFlags run_flags;
  QueryFlags query_flags;
  std::string socket_path;
  std::string queue_path;
  if (command == "run") {
    cli.add_option("--workers", "worker processes to fork (default 4)",
                   &run_flags.workers);
    cli.add_option("--lease-ms", "claim lease in ms (default 30000)",
                   &run_flags.lease_ms);
    cli.add_option("--respawns",
                   "max crashed-worker respawns (default 2x workers)",
                   &run_flags.respawns);
    cli.add_string("--queue", "claim file path (default CACHE/fleet.queue)",
                   &run_flags.queue_path);
    cli.add_string("--socket", "query daemon to consult before computing",
                   &run_flags.socket_path);
    cli.add_string("--only", "comma-separated subset of benches",
                   &run_flags.only);
  } else if (command == "serve") {
    cli.add_string("--socket", "Unix socket path to listen on", &socket_path);
  } else if (command == "query") {
    cli.add_string("--socket", "Unix socket of a running daemon",
                   &query_flags.socket_path);
    cli.add_flag("--ping", "round-trip a ping frame", &query_flags.ping);
    cli.add_flag("--stats", "print the daemon's counters",
                 &query_flags.stats);
    cli.add_option("--key", "trial-space hash to look up", &query_flags.key);
    cli.add_option("--x-bits", "bit pattern of the x coordinate",
                   &query_flags.x_bits);
    cli.add_option("--trial-seed", "seed of the trial", &query_flags.trial_seed);
  } else {
    cli.add_string("--queue", "claim file path", &queue_path);
  }

  std::vector<const char*> sub_argv;
  sub_argv.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) sub_argv.push_back(argv[i]);
  if (const auto rc = cli.handle(static_cast<int>(sub_argv.size()),
                                 sub_argv.data())) {
    return *rc;
  }

  if (command == "run") return run_fleet(cli, run_flags);
  if (command == "serve") return run_serve(cli, socket_path);
  if (command == "query") {
    for (int i = 2; i < argc; ++i) {
      const std::string_view arg{argv[i]};
      if (arg == "--key" || arg == "--x-bits" || arg == "--trial-seed") {
        query_flags.lookup = true;
      }
    }
    return run_query(query_flags);
  }
  return run_status(queue_path);
}
