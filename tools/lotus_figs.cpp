// lotus_figs: run many figure families in ONE process against ONE shared
// trial cache and on-disk trial store.
//
// fig1/fig2/fig3 and the curve benches probe overlapping (config, x, seed)
// grids; run separately, each process recomputes the overlap. This driver
// runs every registered bench (or a --only subset) through one
// exp::TrialCache backed by one sharded exp::TrialStore under --cache-dir
// (--store-shards at creation), so each distinct trial is computed once per
// *machine*: a warm rerun serves every known grid point from disk — loading
// only the shards the selected benches' trial spaces route to — and its
// stdout is byte-identical to the cold run. Appends take per-shard advisory
// locks, so several driver processes may share one cache directory; dedupe
// any doubled records afterwards with `lotus_store compact`.
//
// Flag forwarding: --quick/--no-cache go to every bench; --points/--seeds/
// --seed/--threads are forwarded only when given explicitly, so each bench
// otherwise keeps its own defaults (token_rare's seed is 9, the figures'
// 2008). Per-figure cache chatter is off by default — one summary line on
// stderr at the end covers the whole run (--quiet-cache silences even
// that). CSV sections are prefixed "<bench>/" so one --csv file carries
// every figure without name collisions.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "exp/trial_cache.h"
#include "exp/trial_store.h"

namespace {

using lotus::figs::BenchDef;

/// --only value -> bench definitions, preserving registry order so a warm
/// run replays the cold run's order. Exits like a CLI error on an unknown
/// name.
std::vector<const BenchDef*> select_benches(const std::string& only) {
  std::vector<const BenchDef*> selected;
  if (only.empty()) {
    for (const auto& bench : lotus::figs::all_benches()) {
      selected.push_back(&bench);
    }
    return selected;
  }
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= only.size()) {
    const auto comma = only.find(',', start);
    const auto end = comma == std::string::npos ? only.size() : comma;
    if (end > start) names.emplace_back(only.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (names.empty()) {
    std::cerr << "lotus_figs: --only selected no benches\n";
    std::exit(2);
  }
  for (const auto& bench : lotus::figs::all_benches()) {
    for (const auto& name : names) {
      if (name == bench.name) {
        selected.push_back(&bench);
        break;
      }
    }
  }
  for (const auto& name : names) {
    if (lotus::figs::find_bench(name) == nullptr) {
      std::cerr << "lotus_figs: unknown bench '" << name
                << "' (--list shows the registry)\n";
      std::exit(2);
    }
  }
  return selected;
}

/// The argv a bench would have been invoked with standalone, minus anything
/// the driver owns (CSV, store, stats).
std::vector<std::string> forwarded_args(const lotus::exp::Cli& cli) {
  std::vector<std::string> args;
  if (cli.quick()) args.emplace_back("--quick");
  if (cli.points_explicit()) {
    args.emplace_back("--points");
    args.emplace_back(std::to_string(cli.points()));
  }
  if (cli.seeds_explicit()) {
    args.emplace_back("--seeds");
    args.emplace_back(std::to_string(cli.seeds()));
  }
  if (cli.seed_explicit()) {
    args.emplace_back("--seed");
    args.emplace_back(std::to_string(cli.seed()));
  }
  if (cli.threads() != 0) {
    args.emplace_back("--threads");
    args.emplace_back(std::to_string(cli.threads()));
  }
  if (cli.engine_threads() != 0) {
    args.emplace_back("--engine-threads");
    args.emplace_back(std::to_string(cli.engine_threads()));
  }
  if (cli.nodes() != 0) {
    args.emplace_back("--nodes");
    args.emplace_back(std::to_string(cli.nodes()));
  }
  if (cli.rounds() != 0) {
    args.emplace_back("--rounds");
    args.emplace_back(std::to_string(cli.rounds()));
  }
  if (!cli.cache_enabled()) args.emplace_back("--no-cache");
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lotus;
  exp::Cli cli{{.program = "lotus_figs",
                .summary =
                    "Run several figure families in one process against one "
                    "shared trial cache + on-disk store.",
                .seed = 2008}};
  std::string only;
  bool list = false;
  cli.add_flag("--list", "list the registered benches and exit", &list);
  cli.add_string("--only", "comma-separated subset of benches to run", &only);
  if (const auto rc = cli.handle(argc, argv)) return *rc;
  if (list) {
    for (const auto& bench : figs::all_benches()) {
      std::cout << bench.name << "\n";
    }
    return 0;
  }

  const auto selected = select_benches(only);
  exp::CsvSink sink = exp::open_csv_or_exit(cli.csv(), cli.program());
  exp::TrialCache cache;
  const std::unique_ptr<exp::TrialStore> store = exp::open_store(cache, cli);

  const auto shared = forwarded_args(cli);
  int exit_code = 0;
  bool first = true;
  for (const BenchDef* bench : selected) {
    std::vector<const char*> bench_argv = {bench->name};
    for (const auto& arg : shared) bench_argv.push_back(arg.c_str());
    exp::Cli bench_cli{bench->spec()};
    if (bench_cli.parse(static_cast<int>(bench_argv.size()),
                        bench_argv.data()) != exp::ParseStatus::kOk) {
      std::cerr << "lotus_figs: internal flag forwarding failed for "
                << bench->name << ": " << bench_cli.error() << "\n";
      return 2;
    }
    if (!first) std::cout << "\n";
    first = false;
    sink.set_section_prefix(std::string{bench->name} + "/");
    const int rc = bench->run(bench_cli, sink, cache);
    if (rc != 0 && exit_code == 0) exit_code = rc;
  }
  if (store) store->flush();
  cache.report(cli.program(), cli.cache_enabled() && !cli.quiet_cache());
  return exit_code;
}
