// JSON microbench emitter for the sim/simd kernel tiers.
//
// Times the dispatched hot-path kernels — the RNG fill output pass and the
// bitset word reductions — once per ISA tier available on the host, plus
// the hand-fused scalar fill loop they replaced, and writes one JSON
// document. Unlike bench/micro this has no google-benchmark dependency, so
// CI builds and runs it in every configuration and uploads the output as an
// artifact; the checked-in baseline lives at bench/BENCH_micro.json.
//
// Usage: bench_json [--out PATH]   (default: stdout)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/bitset.h"
#include "sim/rng.h"
#include "sim/simd.h"

namespace {

using namespace lotus;

/// Keeps the timed call from being optimized away without a benchmark
/// library: compiler barrier over the result's address.
inline void sink(const void* p) { asm volatile("" : : "g"(p) : "memory"); }
inline void sink_value(std::uint64_t v) {
  asm volatile("" : : "g"(v) : "memory");
}

/// ns per call of fn: reps are doubled until a round takes >= 10 ms, then
/// the fastest of three such rounds is reported (best-of timing rejects
/// scheduler noise on the shared CI cores).
template <typename Fn>
double time_ns_per_call(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  const auto round_ns = [&](std::size_t reps) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < reps; ++i) fn();
    return std::chrono::duration<double, std::nano>(clock::now() - t0)
        .count();
  };
  std::size_t reps = 1;
  double ns = round_ns(reps);
  while (ns < 1e7 && reps < (std::size_t{1} << 30)) {
    reps *= 2;
    ns = round_ns(reps);
  }
  double best = ns;
  for (int r = 0; r < 2; ++r) {
    const double again = round_ns(reps);
    if (again < best) best = again;
  }
  return best / static_cast<double>(reps);
}

struct Datapoint {
  std::string kernel;
  std::string isa;
  std::size_t n;
  double ns_per_op;
};

/// One RNG fill datapoint at the active tier. `n` is the fill length.
template <typename Fill>
Datapoint rng_point(const char* kernel, std::size_t n, Fill&& fill) {
  sim::Rng rng{8};
  std::vector<std::uint64_t> out(n);
  const double ns = time_ns_per_call([&] {
    fill(rng, out);
    sink(out.data());
  });
  return {kernel, sim::simd::isa_name(sim::simd::active_isa()), n, ns};
}

std::vector<Datapoint> run_benches() {
  std::vector<Datapoint> points;
  const auto isas = sim::simd::available_isas();
  const auto prev = sim::simd::active_isa();
  for (const auto isa : isas) {
    sim::simd::set_active_isa(isa);
    for (const std::size_t n : {std::size_t{256}, std::size_t{4096}}) {
      points.push_back(rng_point(
          "rng_fill_below", n,
          [](sim::Rng& rng, std::vector<std::uint64_t>& out) {
            rng.fill_below(250, out);
          }));
      points.push_back(rng_point(
          "rng_fill_below_descending", n,
          [](sim::Rng& rng, std::vector<std::uint64_t>& out) {
            rng.fill_below_descending(out.size(), out);
          }));
    }
    for (const std::size_t bits : {std::size_t{128}, std::size_t{4800}}) {
      sim::Rng rng{3};
      sim::DynamicBitset a{bits};
      sim::DynamicBitset b{bits};
      for (std::size_t i = 0; i < bits; ++i) {
        if (rng.next_bernoulli(0.5)) a.set(i);
        if (rng.next_bernoulli(0.5)) b.set(i);
      }
      points.push_back({"bitset_count_and",
                        sim::simd::isa_name(isa), bits,
                        time_ns_per_call([&] { sink_value(a.count_and(b)); })});
      const std::size_t lo = bits / 12;  // unaligned range edges
      const std::size_t hi = bits - bits / 24;
      points.push_back(
          {"bitset_count_and_not_range", sim::simd::isa_name(isa), bits,
           time_ns_per_call(
               [&] { sink_value(a.count_and_not_range(b, lo, hi)); })});
      sim::DynamicBitset dst{bits};
      points.push_back({"bitset_transfer", sim::simd::isa_name(isa), bits,
                        time_ns_per_call([&] {
                          dst.reset_all();
                          sink_value(dst.transfer_from(a, 0, bits, bits));
                        })});
    }
  }
  sim::simd::set_active_isa(prev);
  // The pre-SIMD hand-fused scalar loop (state advance + ** scramble +
  // Lemire accept inlined per element): the bar the vector tiers above
  // must beat.
  for (const std::size_t n : {std::size_t{256}, std::size_t{4096}}) {
    sim::Rng rng{8};
    std::vector<std::uint64_t> out(n);
    constexpr std::uint64_t kBound = 250;
    const double ns = time_ns_per_call([&] {
      for (std::size_t k = 0; k < n; ++k) {
        std::uint64_t x = rng();
        __uint128_t m = static_cast<__uint128_t>(x) * kBound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < kBound) [[unlikely]] {
          const std::uint64_t threshold = -kBound % kBound;
          while (low < threshold) {
            x = rng();
            m = static_cast<__uint128_t>(x) * kBound;
            low = static_cast<std::uint64_t>(m);
          }
        }
        out[k] = static_cast<std::uint64_t>(m >> 64);
      }
      sink(out.data());
    });
    points.push_back({"rng_fill_below_fused_scalar", "scalar", n, ns});
  }
  return points;
}

void write_json(std::FILE* f, const std::vector<Datapoint>& points) {
  std::fprintf(
      f,
      "{\n"
      "  \"_comment\": \"Microbench baseline for the runtime-dispatched "
      "sim/simd kernels (LOTUS_SIMD). Regenerate with: ./build/tools/"
      "bench_json --out bench/BENCH_micro.json. ns_per_op is best-of-3 "
      "whole-call time; elems_per_us = n / (ns_per_op / 1000). Each kernel "
      "appears once per ISA tier the recording host could run; "
      "rng_fill_below_fused_scalar is the pre-SIMD hand-fused loop the "
      "vector tiers must beat. Every tier is bit-identical - these numbers "
      "are throughput only.\",\n"
      "  \"_hardware_note\": \"Recorded on a 1-core AVX-512-capable "
      "container (F+DQ+VPOPCNTDQ). Absolute times move with hardware; the "
      "scalar-vs-vector ratios are the stable signal. On hosts without "
      "AVX-512 the avx512 rows are absent and avx2 is the top tier.\",\n"
      "  \"detected_isa\": \"%s\",\n"
      "  \"datapoints\": [\n",
      sim::simd::isa_name(sim::simd::detected_isa()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const double elems_per_us =
        static_cast<double>(p.n) / (p.ns_per_op / 1000.0);
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"isa\": \"%s\", \"n\": %zu, "
                 "\"ns_per_op\": %.1f, \"elems_per_us\": %.1f}%s\n",
                 p.kernel.c_str(), p.isa.c_str(), p.n, p.ns_per_op,
                 elems_per_us, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  const auto points = run_benches();
  if (out_path.empty()) {
    write_json(stdout, points);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", out_path.c_str());
    return 1;
  }
  write_json(f, points);
  std::fclose(f);
  std::fprintf(stderr, "bench_json: wrote %zu datapoints to %s\n",
               points.size(), out_path.c_str());
  return 0;
}
