// Diagnostic tool (not part of the library): where does baseline delivery
// leak? Prints per-node and per-update delivery distributions and traffic
// counters for a no-attack run at Table 1 parameters. Protocol windows are
// exposed as flags (the old positional arguments) via the shared bench CLI.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "exp/cli.h"
#include "gossip/engine.h"
#include "gossip/update_store.h"
#include "sim/stats.h"
#include "sim/table.h"

int main(int argc, char** argv) {
  using namespace lotus;
  gossip::GossipConfig config;
  std::uint64_t push_size = config.push_size;
  std::uint64_t recent_window = config.recent_window;
  std::uint64_t old_window = config.old_window;

  exp::Cli cli{{.program = "debug_baseline",
                .summary =
                    "Diagnostic: delivery distributions and traffic counters "
                    "for an unattacked run.",
                .sweeps = false,
                .seed = 2008}};
  cli.add_option("--push-size", "optimistic push size", &push_size);
  cli.add_option("--recent-window", "recently-released window (rounds)",
                 &recent_window);
  cli.add_option("--old-window", "near-expiry window (rounds)", &old_window);
  if (const auto rc = cli.handle(argc, argv)) return *rc;

  config.seed = cli.seed();
  cli.apply_scale(config);
  config.push_size = static_cast<std::uint32_t>(push_size);
  config.recent_window = static_cast<std::uint32_t>(recent_window);
  config.old_window = static_cast<std::uint32_t>(old_window);

  // Dense reference model: this tool inspects per-update delivery across the
  // whole horizon, which the windowed production model folds away at expiry.
  gossip::GossipEngine engine{config, gossip::AttackPlan{},
                              gossip::StateModel::kDense};
  const auto result = engine.run();
  const gossip::UpdateClock clock{config};
  const auto measured = clock.measured(config.warmup_rounds);

  std::cout << "overall=" << result.overall_delivery
            << " exchanges=" << result.balanced_exchanges
            << " exch_updates=" << result.exchange_updates
            << " pushes=" << result.pushes
            << " push_updates=" << result.push_updates
            << " junk=" << result.junk_updates << "\n";
  std::cout << "mean updates per exchange = "
            << static_cast<double>(result.exchange_updates) /
                   static_cast<double>(result.balanced_exchanges)
            << "\n";

  // Per-node delivery distribution.
  std::vector<double> node_delivery;
  for (std::uint32_t v = 0; v < config.nodes; ++v) {
    node_delivery.push_back(
        static_cast<double>(engine.holdings_of(v).count_range(measured.lo,
                                                              measured.hi)) /
        static_cast<double>(measured.size()));
  }
  std::sort(node_delivery.begin(), node_delivery.end());
  std::cout << "node delivery: min=" << node_delivery.front()
            << " p10=" << sim::percentile(node_delivery, 0.1)
            << " p50=" << sim::percentile(node_delivery, 0.5)
            << " p90=" << sim::percentile(node_delivery, 0.9)
            << " max=" << node_delivery.back() << "\n";

  // Per-update delivery distribution.
  std::vector<double> upd_delivery;
  for (auto u = measured.lo; u < measured.hi; ++u) {
    std::size_t holders = 0;
    for (std::uint32_t v = 0; v < config.nodes; ++v) {
      holders += engine.holdings_of(v).test(u);
    }
    upd_delivery.push_back(static_cast<double>(holders) /
                           static_cast<double>(config.nodes));
  }
  std::sort(upd_delivery.begin(), upd_delivery.end());
  std::cout << "update delivery: min=" << upd_delivery.front()
            << " p10=" << sim::percentile(upd_delivery, 0.1)
            << " p50=" << sim::percentile(upd_delivery, 0.5)
            << " p90=" << sim::percentile(upd_delivery, 0.9)
            << " max=" << upd_delivery.back() << "\n";
  return 0;
}
