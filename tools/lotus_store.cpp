// lotus_store: administer the sharded on-disk trial store (store v2).
//
// The store under a --cache-dir is a manifest plus N shard files, appended
// to by any number of bench/driver processes under per-shard advisory locks
// (see src/exp/trial_store.h for the format). This tool is the offline side
// of that design:
//
//   stats    per-shard record counts, file bytes, duplicate tallies, and
//            sidecar index health
//   verify   validate the manifest, every shard's committed-prefix
//            checksum, and every sidecar index (self-checksum, binding to
//            the shard prefix, bloom membership of every covered record,
//            and offset-run coverage); exits 1 on any corruption (CI runs
//            this on the uploaded cache artifact)
//   compact  rewrite each shard dropping duplicate (key, x, seed) records
//            left by concurrent writers — first occurrence wins, so no
//            lookup result changes — and rebuild its sidecar index. Each
//            shard is rewritten to a temp file and atomically renamed
//            under the shard's exclusive flock, so a crash mid-compaction
//            leaves the original shard intact. By default the store's
//            directory lock is held too, serialising against store opens
//            and migrations; --online skips it, letting compaction run
//            concurrently with live sweeps (writers blocked on a shard's
//            flock re-validate the inode and append to the compacted
//            file, so no committed record is ever lost).
//   migrate  convert a v1 flat log (trials.bin) into v2 shards; the
//            records serve the same hits afterwards
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "exp/trial_store.h"

namespace {

using lotus::exp::TrialStore;

constexpr std::string_view kUsage =
    "usage: lotus_store <stats|verify|compact|migrate> [options]\n"
    "\n"
    "Administer the sharded on-disk trial store under a cache directory.\n"
    "\n"
    "subcommands:\n"
    "  stats      per-shard record counts, bytes, duplicate tallies, and\n"
    "             sidecar index health\n"
    "  verify     validate the manifest, every shard checksum, and every\n"
    "             sidecar index (exit 1 on any corruption or mismatch)\n"
    "  compact    rewrite shards dropping duplicate (key, x, seed) records\n"
    "             and rebuild their sidecar indexes (atomic rename per\n"
    "             shard); --online runs concurrently with live sweeps\n"
    "  migrate    convert a v1 flat log (trials.bin) into v2 shards\n"
    "\n"
    "options:\n"
    "  --cache-dir DIR   store directory (default .lotus-cache)\n"
    "  --store-shards N  shard count when migrate creates a fresh store\n"
    "                    (default 8; an existing manifest wins)\n"
    "  --online          compact only: skip the store directory lock so\n"
    "                    compaction interleaves safely with running sweeps\n"
    "  --canon           compact only: also sort each shard's records into\n"
    "                    canonical (key, x, seed) order, so stores holding\n"
    "                    the same trials become byte-identical (fleet\n"
    "                    equivalence checks cmp against this form)\n"
    "  --help            show this message\n";

struct Args {
  std::string command;
  std::string cache_dir = ".lotus-cache";
  std::uint64_t store_shards = 0;
  bool online = false;
  bool canonical = false;
};

int usage_error(const std::string& message) {
  std::cerr << "lotus_store: " << message << "\n\n" << kUsage;
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv, int& exit_code) {
  Args args;
  if (argc < 2) {
    exit_code = usage_error("missing subcommand");
    return std::nullopt;
  }
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h") {
    std::cout << kUsage;
    exit_code = 0;
    return std::nullopt;
  }
  if (args.command != "stats" && args.command != "verify" &&
      args.command != "compact" && args.command != "migrate") {
    exit_code = usage_error("unknown subcommand '" + args.command + "'");
    return std::nullopt;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      exit_code = 0;
      return std::nullopt;
    }
    if (arg == "--online") {
      if (args.command != "compact") {
        exit_code = usage_error("--online only applies to compact");
        return std::nullopt;
      }
      args.online = true;
      continue;
    }
    if (arg == "--canon") {
      if (args.command != "compact") {
        exit_code = usage_error("--canon only applies to compact");
        return std::nullopt;
      }
      args.canonical = true;
      continue;
    }
    if (arg == "--cache-dir" || arg == "--store-shards") {
      if (i + 1 >= argc) {
        exit_code = usage_error("missing value for " + std::string{arg});
        return std::nullopt;
      }
      const std::string value{argv[++i]};
      if (arg == "--cache-dir") {
        if (value.empty()) {
          exit_code = usage_error("--cache-dir needs a non-empty path");
          return std::nullopt;
        }
        args.cache_dir = value;
      } else {
        std::uint64_t parsed = 0;
        for (const char ch : value) {
          if (ch < '0' || ch > '9') {
            exit_code = usage_error("invalid value '" + value +
                                    "' for --store-shards");
            return std::nullopt;
          }
          parsed = parsed * 10 + static_cast<std::uint64_t>(ch - '0');
        }
        if (value.empty() || parsed == 0) {
          exit_code = usage_error("--store-shards must be >= 1");
          return std::nullopt;
        }
        args.store_shards = parsed;
      }
      continue;
    }
    exit_code = usage_error("unknown option '" + std::string{arg} + "'");
    return std::nullopt;
  }
  return args;
}

const char* status_name(TrialStore::LoadStatus status) {
  switch (status) {
    case TrialStore::LoadStatus::kFresh:
      return "empty";
    case TrialStore::LoadStatus::kLoaded:
      return "ok";
    case TrialStore::LoadStatus::kDiscardedVersion:
      return "VERSION-MISMATCH";
    case TrialStore::LoadStatus::kDiscardedCorrupt:
      return "CORRUPT";
    case TrialStore::LoadStatus::kIoError:
      return "IO-ERROR";
    default:
      return "?";
  }
}

std::size_t count_duplicates(
    const std::vector<TrialStore::Record>& records) {
  std::set<std::array<std::uint64_t, 3>> unique;
  for (const auto& record : records) {
    unique.insert({record.key_hash, record.x_bits, record.seed});
  }
  return records.size() - unique.size();
}

std::uintmax_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

/// Shared manifest gate for the read-only subcommands: prints why a v2
/// store cannot be enumerated (absent, v1-only, or corrupt manifest).
std::optional<std::uint64_t> require_manifest(const Args& args) {
  const auto shards = TrialStore::peek_manifest(args.cache_dir);
  if (shards) return shards;
  std::error_code ec;
  if (std::filesystem::exists(lotus::exp::legacy_store_path(args.cache_dir),
                              ec)) {
    std::cerr << "lotus_store: " << args.cache_dir
              << " holds a v1 flat log; run `lotus_store migrate "
                 "--cache-dir "
              << args.cache_dir << "` first\n";
  } else if (std::filesystem::exists(
                 lotus::exp::manifest_path(args.cache_dir), ec)) {
    std::cerr << "lotus_store: corrupt manifest in " << args.cache_dir
              << " (the next bench run restarts the store cold)\n";
  } else {
    std::cerr << "lotus_store: no trial store at " << args.cache_dir << "\n";
  }
  return std::nullopt;
}

/// One-word sidecar-index health for stats output.
const char* index_health(const TrialStore::Shard& shard,
                         const std::vector<TrialStore::Record>& records) {
  bool corrupt = false;
  const auto index = shard.read_index(&corrupt);
  if (corrupt) return "CORRUPT-INDEX";
  if (!index) {
    // Absent shards legitimately have no index; a populated shard without
    // one still serves, via the sequential-scan fallback.
    return records.empty() ? "no-index" : "NO-INDEX(scan)";
  }
  if (index->covered_count > records.size()) return "STALE-INDEX";
  std::uint64_t chain = 0;
  for (std::uint64_t i = 0; i < index->covered_count; ++i) {
    chain = TrialStore::chain_checksum(chain,
                                       records[static_cast<std::size_t>(i)]);
  }
  if (chain != index->covered_checksum) return "STALE-INDEX";
  if (index->covered_count < records.size()) return "indexed(tail)";
  return "indexed";
}

int run_stats(const Args& args) {
  const auto shards = require_manifest(args);
  if (!shards) return 1;
  std::size_t total_records = 0;
  std::size_t total_duplicates = 0;
  std::uintmax_t total_bytes = 0;
  std::cout << args.cache_dir << ": " << *shards << " shards\n";
  for (std::uint64_t i = 0; i < *shards; ++i) {
    const std::string path = lotus::exp::shard_path(args.cache_dir,
                                                    static_cast<std::size_t>(i));
    const TrialStore::Shard shard{path};
    std::vector<TrialStore::Record> records;
    const auto status = shard.load(records);
    const auto duplicates = count_duplicates(records);
    const auto bytes = file_bytes(path);
    total_records += records.size();
    total_duplicates += duplicates;
    total_bytes += bytes;
    std::cout << "  shard " << i << ": " << records.size() << " records, "
              << bytes << " bytes, " << duplicates << " duplicates ["
              << status_name(status) << ", "
              << index_health(shard, records) << "]\n";
  }
  std::cout << "total: " << total_records << " records, " << total_bytes
            << " bytes, " << total_duplicates << " duplicates";
  if (total_duplicates > 0) std::cout << " (run `lotus_store compact`)";
  std::cout << "\n";
  return 0;
}

/// Deep sidecar-index validation against the shard's loaded records:
/// binding checksum, bloom membership of every covered record, and the
/// run list locating every covered record under its own key. (Structural
/// checks — self-checksum, sortedness, exact [0, covered) tiling — already
/// ran inside read_index.) Returns false (with a diagnostic on stdout)
/// when the index exists but lies; a *missing* index is legal (readers
/// fall back to a sequential scan) and only noted. `indexed` reports
/// whether a valid index was found, so the caller need not re-read it.
bool verify_index(std::uint64_t shard_no, const TrialStore::Shard& shard,
                  const std::vector<TrialStore::Record>& records,
                  bool& indexed) {
  indexed = false;
  bool corrupt = false;
  const auto index = shard.read_index(&corrupt);
  if (corrupt) {
    std::cout << "shard " << shard_no
              << ": CORRUPT-INDEX (self-checksum or structure)\n";
    return false;
  }
  if (!index) {
    if (!records.empty()) {
      std::cout << "shard " << shard_no
                << ": note: no sidecar index (reads fall back to a "
                   "sequential scan; compact rebuilds it)\n";
    }
    return true;
  }
  indexed = true;
  if (index->covered_count > records.size()) {
    std::cout << "shard " << shard_no << ": STALE-INDEX (covers "
              << index->covered_count << " of " << records.size()
              << " records)\n";
    return false;
  }
  std::uint64_t chain = 0;
  for (std::uint64_t i = 0; i < index->covered_count; ++i) {
    chain = TrialStore::chain_checksum(chain,
                                       records[static_cast<std::size_t>(i)]);
  }
  if (chain != index->covered_checksum) {
    std::cout << "shard " << shard_no
              << ": STALE-INDEX (binding checksum mismatch)\n";
    return false;
  }
  for (std::uint64_t i = 0; i < index->covered_count; ++i) {
    const auto& record = records[static_cast<std::size_t>(i)];
    if (!index->may_contain(record.key_hash)) {
      std::cout << "shard " << shard_no << ": BAD-INDEX (record " << i
                << " key not in bloom filter)\n";
      return false;
    }
    bool located = false;
    for (const auto& run : index->runs_for(record.key_hash)) {
      if (i >= run.first && i < run.first + run.count) {
        located = true;
        break;
      }
    }
    if (!located) {
      std::cout << "shard " << shard_no << ": BAD-INDEX (record " << i
                << " not covered by its key's offset runs)\n";
      return false;
    }
  }
  return true;
}

int run_verify(const Args& args) {
  const auto shards = require_manifest(args);
  if (!shards) return 1;
  std::size_t bad = 0;
  std::size_t total_records = 0;
  std::size_t indexed = 0;
  for (std::uint64_t i = 0; i < *shards; ++i) {
    const TrialStore::Shard shard{lotus::exp::shard_path(
        args.cache_dir, static_cast<std::size_t>(i))};
    std::vector<TrialStore::Record> records;
    const auto status = shard.load(records);
    total_records += records.size();
    if (status != TrialStore::LoadStatus::kLoaded &&
        status != TrialStore::LoadStatus::kFresh) {
      ++bad;
      std::cout << "shard " << i << ": " << status_name(status) << "\n";
      continue;
    }
    bool shard_indexed = false;
    if (!verify_index(i, shard, records, shard_indexed)) {
      ++bad;
      continue;
    }
    if (shard_indexed) ++indexed;
  }
  if (bad > 0) {
    std::cout << "FAIL: " << bad << "/" << *shards
              << " shards or indexes invalid\n";
    return 1;
  }
  std::cout << "OK: " << *shards << " shards (" << indexed << " indexed), "
            << total_records
            << " records, every committed prefix and index verified\n";
  return 0;
}

/// Exclusive flock on the store's directory lock for the default (offline)
/// compact: serialises against store opens/migrations so compaction sees a
/// quiesced directory. --online skips this and relies on the per-shard
/// flocks plus atomic renames alone.
class DirectoryLock {
 public:
  explicit DirectoryLock(const std::string& cache_dir) {
    const std::string path = lotus::exp::store_lock_path(cache_dir);
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    while (::flock(fd_, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return;
      }
    }
  }
  ~DirectoryLock() {
    if (fd_ >= 0) ::close(fd_);
  }
  DirectoryLock(const DirectoryLock&) = delete;
  DirectoryLock& operator=(const DirectoryLock&) = delete;
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

int run_compact(const Args& args) {
  const auto shards = require_manifest(args);
  if (!shards) return 1;
  std::optional<DirectoryLock> dir_lock;
  if (!args.online) {
    dir_lock.emplace(args.cache_dir);
    if (!dir_lock->ok()) {
      std::cerr << "lotus_store: cannot take the store directory lock in "
                << args.cache_dir << " (retry with --online to compact "
                << "without it)\n";
      return 1;
    }
  }
  std::size_t dropped = 0;
  std::size_t failed = 0;
  for (std::uint64_t i = 0; i < *shards; ++i) {
    const TrialStore::Shard shard{lotus::exp::shard_path(
        args.cache_dir, static_cast<std::size_t>(i))};
    const auto stats = shard.compact(args.canonical);
    if (!stats) {
      ++failed;
      std::cout << "shard " << i
                << ": not compacted (corrupt or I/O error; the next append "
                   "resets a corrupt shard)\n";
      continue;
    }
    if (stats->before != stats->after) {
      std::cout << "shard " << i << ": " << stats->before << " -> "
                << stats->after << " records\n";
      dropped += stats->before - stats->after;
    }
  }
  std::cout << "compacted" << (args.online ? " (online)" : "")
            << (args.canonical ? " (canonical)" : "") << ": " << dropped
            << " duplicate records dropped\n";
  return failed == 0 ? 0 : 1;
}

int run_migrate(const Args& args) {
  std::error_code ec;
  const std::string legacy = lotus::exp::legacy_store_path(args.cache_dir);
  const bool had_legacy = std::filesystem::exists(legacy, ec) && !ec;
  if (!had_legacy) {
    // Nothing to migrate; require_manifest tells apart "already v2",
    // "corrupt manifest" (which migrate must not silently repair — a bench
    // open restarts that store cold), and "no store at all".
    const auto shards = require_manifest(args);
    if (!shards) return 1;
    std::cout << "already v2 (" << *shards << " shards); nothing to migrate\n";
    return 0;
  }
  // Opening the store performs the migration (under the directory lock, so
  // it is safe even if a bench is starting up concurrently).
  TrialStore store{args.cache_dir, args.store_shards};
  if (!store.enabled()) {
    std::cerr << "lotus_store: cannot open store at " << args.cache_dir
              << "\n";
    return 1;
  }
  if (store.open_status() == TrialStore::LoadStatus::kMigratedLegacy) {
    std::cout << "migrated " << store.migrated()
              << " records from trials.bin into " << store.shard_count()
              << " shards\n";
  } else {
    std::cout << "v1 log was corrupt; discarded (store is v2 with "
              << store.shard_count() << " shards)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int exit_code = 0;
  const auto args = parse_args(argc, argv, exit_code);
  if (!args) return exit_code;
  if (args->command == "stats") return run_stats(*args);
  if (args->command == "verify") return run_verify(*args);
  if (args->command == "compact") return run_compact(*args);
  return run_migrate(*args);
}
