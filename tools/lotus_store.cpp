// lotus_store: administer the sharded on-disk trial store (store v2).
//
// The store under a --cache-dir is a manifest plus N shard files, appended
// to by any number of bench/driver processes under per-shard advisory locks
// (see src/exp/trial_store.h for the format). This tool is the offline side
// of that design:
//
//   stats    per-shard record counts, file bytes, and duplicate tallies
//   verify   validate the manifest and every shard's committed-prefix
//            checksum; exits 1 on any corruption (CI runs this on the
//            uploaded cache artifact)
//   compact  rewrite each shard dropping duplicate (key, x, seed) records
//            left by concurrent writers — first occurrence wins, so no
//            lookup result changes
//   migrate  convert a v1 flat log (trials.bin) into v2 shards; the
//            records serve the same hits afterwards
//
// compact and migrate take the same locks the writers do, but are meant to
// run while no sweep is active: a crash mid-compaction leaves that shard to
// be discarded cold on its next load.
#include <array>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "exp/trial_store.h"

namespace {

using lotus::exp::TrialStore;

constexpr std::string_view kUsage =
    "usage: lotus_store <stats|verify|compact|migrate> [options]\n"
    "\n"
    "Administer the sharded on-disk trial store under a cache directory.\n"
    "\n"
    "subcommands:\n"
    "  stats      per-shard record counts, bytes, and duplicate tallies\n"
    "  verify     validate the manifest and every shard checksum\n"
    "             (exit 1 on any corruption or version mismatch)\n"
    "  compact    rewrite shards dropping duplicate (key, x, seed) records\n"
    "  migrate    convert a v1 flat log (trials.bin) into v2 shards\n"
    "\n"
    "options:\n"
    "  --cache-dir DIR   store directory (default .lotus-cache)\n"
    "  --store-shards N  shard count when migrate creates a fresh store\n"
    "                    (default 8; an existing manifest wins)\n"
    "  --help            show this message\n";

struct Args {
  std::string command;
  std::string cache_dir = ".lotus-cache";
  std::uint64_t store_shards = 0;
};

int usage_error(const std::string& message) {
  std::cerr << "lotus_store: " << message << "\n\n" << kUsage;
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv, int& exit_code) {
  Args args;
  if (argc < 2) {
    exit_code = usage_error("missing subcommand");
    return std::nullopt;
  }
  args.command = argv[1];
  if (args.command == "--help" || args.command == "-h") {
    std::cout << kUsage;
    exit_code = 0;
    return std::nullopt;
  }
  if (args.command != "stats" && args.command != "verify" &&
      args.command != "compact" && args.command != "migrate") {
    exit_code = usage_error("unknown subcommand '" + args.command + "'");
    return std::nullopt;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      exit_code = 0;
      return std::nullopt;
    }
    if (arg == "--cache-dir" || arg == "--store-shards") {
      if (i + 1 >= argc) {
        exit_code = usage_error("missing value for " + std::string{arg});
        return std::nullopt;
      }
      const std::string value{argv[++i]};
      if (arg == "--cache-dir") {
        if (value.empty()) {
          exit_code = usage_error("--cache-dir needs a non-empty path");
          return std::nullopt;
        }
        args.cache_dir = value;
      } else {
        std::uint64_t parsed = 0;
        for (const char ch : value) {
          if (ch < '0' || ch > '9') {
            exit_code = usage_error("invalid value '" + value +
                                    "' for --store-shards");
            return std::nullopt;
          }
          parsed = parsed * 10 + static_cast<std::uint64_t>(ch - '0');
        }
        if (value.empty() || parsed == 0) {
          exit_code = usage_error("--store-shards must be >= 1");
          return std::nullopt;
        }
        args.store_shards = parsed;
      }
      continue;
    }
    exit_code = usage_error("unknown option '" + std::string{arg} + "'");
    return std::nullopt;
  }
  return args;
}

const char* status_name(TrialStore::LoadStatus status) {
  switch (status) {
    case TrialStore::LoadStatus::kFresh:
      return "empty";
    case TrialStore::LoadStatus::kLoaded:
      return "ok";
    case TrialStore::LoadStatus::kDiscardedVersion:
      return "VERSION-MISMATCH";
    case TrialStore::LoadStatus::kDiscardedCorrupt:
      return "CORRUPT";
    case TrialStore::LoadStatus::kIoError:
      return "IO-ERROR";
    default:
      return "?";
  }
}

std::size_t count_duplicates(
    const std::vector<TrialStore::Record>& records) {
  std::set<std::array<std::uint64_t, 3>> unique;
  for (const auto& record : records) {
    unique.insert({record.key_hash, record.x_bits, record.seed});
  }
  return records.size() - unique.size();
}

std::uintmax_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : size;
}

/// Shared manifest gate for the read-only subcommands: prints why a v2
/// store cannot be enumerated (absent, v1-only, or corrupt manifest).
std::optional<std::uint64_t> require_manifest(const Args& args) {
  const auto shards = TrialStore::peek_manifest(args.cache_dir);
  if (shards) return shards;
  std::error_code ec;
  if (std::filesystem::exists(lotus::exp::legacy_store_path(args.cache_dir),
                              ec)) {
    std::cerr << "lotus_store: " << args.cache_dir
              << " holds a v1 flat log; run `lotus_store migrate "
                 "--cache-dir "
              << args.cache_dir << "` first\n";
  } else if (std::filesystem::exists(
                 lotus::exp::manifest_path(args.cache_dir), ec)) {
    std::cerr << "lotus_store: corrupt manifest in " << args.cache_dir
              << " (the next bench run restarts the store cold)\n";
  } else {
    std::cerr << "lotus_store: no trial store at " << args.cache_dir << "\n";
  }
  return std::nullopt;
}

int run_stats(const Args& args) {
  const auto shards = require_manifest(args);
  if (!shards) return 1;
  std::size_t total_records = 0;
  std::size_t total_duplicates = 0;
  std::uintmax_t total_bytes = 0;
  std::cout << args.cache_dir << ": " << *shards << " shards\n";
  for (std::uint64_t i = 0; i < *shards; ++i) {
    const std::string path = lotus::exp::shard_path(args.cache_dir,
                                                    static_cast<std::size_t>(i));
    const TrialStore::Shard shard{path};
    std::vector<TrialStore::Record> records;
    const auto status = shard.load(records);
    const auto duplicates = count_duplicates(records);
    const auto bytes = file_bytes(path);
    total_records += records.size();
    total_duplicates += duplicates;
    total_bytes += bytes;
    std::cout << "  shard " << i << ": " << records.size() << " records, "
              << bytes << " bytes, " << duplicates << " duplicates ["
              << status_name(status) << "]\n";
  }
  std::cout << "total: " << total_records << " records, " << total_bytes
            << " bytes, " << total_duplicates << " duplicates";
  if (total_duplicates > 0) std::cout << " (run `lotus_store compact`)";
  std::cout << "\n";
  return 0;
}

int run_verify(const Args& args) {
  const auto shards = require_manifest(args);
  if (!shards) return 1;
  std::size_t bad = 0;
  std::size_t total_records = 0;
  for (std::uint64_t i = 0; i < *shards; ++i) {
    const TrialStore::Shard shard{lotus::exp::shard_path(
        args.cache_dir, static_cast<std::size_t>(i))};
    std::vector<TrialStore::Record> records;
    const auto status = shard.load(records);
    total_records += records.size();
    if (status != TrialStore::LoadStatus::kLoaded &&
        status != TrialStore::LoadStatus::kFresh) {
      ++bad;
      std::cout << "shard " << i << ": " << status_name(status) << "\n";
    }
  }
  if (bad > 0) {
    std::cout << "FAIL: " << bad << "/" << *shards << " shards invalid\n";
    return 1;
  }
  std::cout << "OK: " << *shards << " shards, " << total_records
            << " records, every committed prefix verified\n";
  return 0;
}

int run_compact(const Args& args) {
  const auto shards = require_manifest(args);
  if (!shards) return 1;
  std::size_t dropped = 0;
  std::size_t failed = 0;
  for (std::uint64_t i = 0; i < *shards; ++i) {
    const TrialStore::Shard shard{lotus::exp::shard_path(
        args.cache_dir, static_cast<std::size_t>(i))};
    const auto stats = shard.compact();
    if (!stats) {
      ++failed;
      std::cout << "shard " << i
                << ": not compacted (corrupt or I/O error; the next append "
                   "resets a corrupt shard)\n";
      continue;
    }
    if (stats->before != stats->after) {
      std::cout << "shard " << i << ": " << stats->before << " -> "
                << stats->after << " records\n";
      dropped += stats->before - stats->after;
    }
  }
  std::cout << "compacted: " << dropped << " duplicate records dropped\n";
  return failed == 0 ? 0 : 1;
}

int run_migrate(const Args& args) {
  std::error_code ec;
  const std::string legacy = lotus::exp::legacy_store_path(args.cache_dir);
  const bool had_legacy = std::filesystem::exists(legacy, ec) && !ec;
  if (!had_legacy) {
    // Nothing to migrate; require_manifest tells apart "already v2",
    // "corrupt manifest" (which migrate must not silently repair — a bench
    // open restarts that store cold), and "no store at all".
    const auto shards = require_manifest(args);
    if (!shards) return 1;
    std::cout << "already v2 (" << *shards << " shards); nothing to migrate\n";
    return 0;
  }
  // Opening the store performs the migration (under the directory lock, so
  // it is safe even if a bench is starting up concurrently).
  TrialStore store{args.cache_dir, args.store_shards};
  if (!store.enabled()) {
    std::cerr << "lotus_store: cannot open store at " << args.cache_dir
              << "\n";
    return 1;
  }
  if (store.open_status() == TrialStore::LoadStatus::kMigratedLegacy) {
    std::cout << "migrated " << store.migrated()
              << " records from trials.bin into " << store.shard_count()
              << " shards\n";
  } else {
    std::cout << "v1 log was corrupt; discarded (store is v2 with "
              << store.shard_count() << " shards)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int exit_code = 0;
  const auto args = parse_args(argc, argv, exit_code);
  if (!args) return exit_code;
  if (args->command == "stats") return run_stats(*args);
  if (args->command == "verify") return run_verify(*args);
  if (args->command == "compact") return run_compact(*args);
  return run_migrate(*args);
}
