// Microbench drift checker: compares a fresh bench_json run against the
// checked-in baseline (bench/BENCH_micro.json) and prints a markdown drift
// table, one row per (kernel, isa, n) datapoint.
//
// The CI runner is a shared 1-core container, so absolute times are noisy;
// the default tolerance is wide (30%) and the tool is report-only unless
// --fail-on-regression is passed, in which case any datapoint slower than
// baseline by more than the tolerance exits 1. Datapoints present on only
// one side (e.g. an AVX-512 baseline diffed on an AVX2-only host) are
// listed but never fail the run.
//
// The parser handles exactly the flat document bench_json emits — one
// object per datapoint with string values for kernel/isa and numeric
// values for n/ns_per_op — not general JSON.
//
// Usage: bench_diff --baseline PATH --current PATH
//                   [--tolerance FRAC] [--fail-on-regression]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Datapoint {
  std::string kernel;
  std::string isa;
  long n = 0;
  double ns_per_op = 0.0;
};

/// Value of `"key": "str"` or `"key": num` after `from` in `text`, as the
/// raw token between the colon and the next ',' or '}'.
std::optional<std::string> field_token(const std::string& text,
                                       std::size_t from, std::size_t until,
                                       const char* key) {
  const std::string needle = std::string{"\""} + key + "\"";
  const auto at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return std::nullopt;
  auto colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return std::nullopt;
  auto end = text.find_first_of(",}", colon);
  if (end == std::string::npos) return std::nullopt;
  std::string token = text.substr(colon + 1, end - colon - 1);
  // Trim whitespace and surrounding quotes.
  const auto first = token.find_first_not_of(" \t\n\"");
  const auto last = token.find_last_not_of(" \t\n\"");
  if (first == std::string::npos) return std::nullopt;
  return token.substr(first, last - first + 1);
}

/// All datapoints in a bench_json document. Each datapoint object is
/// located by its "kernel" key; fields are read up to the object's
/// closing brace.
std::vector<Datapoint> parse_datapoints(const std::string& text) {
  std::vector<Datapoint> points;
  const auto array_at = text.find("\"datapoints\"");
  if (array_at == std::string::npos) return points;
  std::size_t at = array_at;
  while ((at = text.find("{\"kernel\"", at)) != std::string::npos) {
    const auto close = text.find('}', at);
    if (close == std::string::npos) break;
    const auto kernel = field_token(text, at, close, "kernel");
    const auto isa = field_token(text, at, close, "isa");
    const auto n = field_token(text, at, close, "n");
    const auto ns = field_token(text, at, close, "ns_per_op");
    if (kernel && isa && n && ns) {
      points.push_back({*kernel, *isa, std::atol(n->c_str()),
                        std::atof(ns->c_str())});
    }
    at = close + 1;
  }
  return points;
}

std::optional<std::string> read_file(const char* path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const Datapoint* find_point(const std::vector<Datapoint>& points,
                            const Datapoint& like) {
  for (const auto& p : points) {
    if (p.kernel == like.kernel && p.isa == like.isa && p.n == like.n)
      return &p;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double tolerance = 0.30;
  bool fail_on_regression = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string_view{argv[i]};
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--fail-on-regression") {
      fail_on_regression = true;
    } else {
      std::cerr << "usage: bench_diff --baseline PATH --current PATH"
                   " [--tolerance FRAC] [--fail-on-regression]\n";
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::cerr << "bench_diff: --baseline and --current are required\n";
    return 2;
  }
  const auto baseline_text = read_file(baseline_path);
  if (!baseline_text) {
    std::cerr << "bench_diff: cannot read " << baseline_path << "\n";
    return 2;
  }
  const auto current_text = read_file(current_path);
  if (!current_text) {
    std::cerr << "bench_diff: cannot read " << current_path << "\n";
    return 2;
  }
  const auto baseline = parse_datapoints(*baseline_text);
  const auto current = parse_datapoints(*current_text);
  if (baseline.empty() || current.empty()) {
    std::cerr << "bench_diff: no datapoints parsed (baseline "
              << baseline.size() << ", current " << current.size() << ")\n";
    return 2;
  }

  int regressions = 0;
  int improvements = 0;
  int only_one_side = 0;
  std::printf(
      "| kernel | isa | n | baseline ns/op | current ns/op | drift | "
      "status |\n");
  std::printf("|---|---|---:|---:|---:|---:|---|\n");
  for (const auto& base : baseline) {
    const Datapoint* cur = find_point(current, base);
    if (cur == nullptr) {
      ++only_one_side;
      std::printf("| %s | %s | %ld | %.1f | - | - | baseline-only |\n",
                  base.kernel.c_str(), base.isa.c_str(), base.n,
                  base.ns_per_op);
      continue;
    }
    const double drift =
        base.ns_per_op > 0.0 ? cur->ns_per_op / base.ns_per_op - 1.0 : 0.0;
    const char* status = "ok";
    if (drift > tolerance) {
      status = "REGRESSION";
      ++regressions;
    } else if (drift < -tolerance) {
      status = "improved";
      ++improvements;
    }
    std::printf("| %s | %s | %ld | %.1f | %.1f | %+.1f%% | %s |\n",
                base.kernel.c_str(), base.isa.c_str(), base.n,
                base.ns_per_op, cur->ns_per_op, drift * 100.0, status);
  }
  for (const auto& cur : current) {
    if (find_point(baseline, cur) == nullptr) {
      ++only_one_side;
      std::printf("| %s | %s | %ld | - | %.1f | - | current-only |\n",
                  cur.kernel.c_str(), cur.isa.c_str(), cur.n,
                  cur.ns_per_op);
    }
  }
  std::printf(
      "\n%d regression(s), %d improvement(s), %d unmatched datapoint(s) at "
      "%.0f%% tolerance\n",
      regressions, improvements, only_one_side, tolerance * 100.0);
  return (fail_on_regression && regressions > 0) ? 1 : 0;
}
